#include <set>

#include <gtest/gtest.h>

#include "algorithms/pmc.h"
#include "algorithms/snapshots.h"
#include "algorithms/static_greedy.h"
#include "diffusion/spread.h"
#include "framework/datasets.h"
#include "graph/weights.h"
#include "tests/test_util.h"

namespace imbench {
namespace {

SelectionInput IcInput(const Graph& graph, uint32_t k, Counters* counters) {
  SelectionInput input;
  input.graph = &graph;
  input.diffusion = DiffusionKind::kIndependentCascade;
  input.k = k;
  input.seed = 31;
  input.counters = counters;
  return input;
}

TEST(SnapshotTest, SampleRespectsProbabilities) {
  Graph g = testutil::PathGraph(3, 1.0);
  Rng rng(1);
  const Snapshot snap = SampleSnapshot(g, rng);
  EXPECT_EQ(snap.targets.size(), 2u);  // p = 1 keeps every edge
  EXPECT_EQ(snap.offsets.size(), 4u);

  Graph zero = testutil::PathGraph(3, 0.0);
  const Snapshot empty = SampleSnapshot(zero, rng);
  EXPECT_TRUE(empty.targets.empty());
}

TEST(SnapshotTest, EdgeRetentionRate) {
  Graph g = MakeDataset("nethept", DatasetScale::kTiny);
  AssignConstantWeights(g, 0.3);
  uint64_t kept = 0;
  const int rounds = 50;
  for (int i = 0; i < rounds; ++i) {
    Rng rng = Rng::ForStream(2, i);
    kept += SampleSnapshot(g, rng).targets.size();
  }
  const double rate = static_cast<double>(kept) /
                      (static_cast<double>(g.num_edges()) * rounds);
  EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(StaticGreedyTest, PicksTheHub) {
  Graph g = testutil::HubGraph();
  StaticGreedy sg(StaticGreedyOptions{100});
  Counters counters;
  const SelectionResult result = sg.Select(IcInput(g, 2, &counters));
  EXPECT_EQ(result.seeds[0], 0u);
  EXPECT_EQ(counters.snapshots, 100u);
}

TEST(StaticGreedyTest, RejectsLt) {
  StaticGreedy sg(StaticGreedyOptions{});
  EXPECT_TRUE(sg.Supports(DiffusionKind::kIndependentCascade));
  EXPECT_FALSE(sg.Supports(DiffusionKind::kLinearThreshold));
}

TEST(StaticGreedyTest, InternalEstimateTracksMcSpread) {
  Graph g = MakeDataset("nethept", DatasetScale::kTiny);
  AssignConstantWeights(g, 0.1);
  StaticGreedy sg(StaticGreedyOptions{250});
  const SelectionResult result = sg.Select(IcInput(g, 5, nullptr));
  const double mc =
      EstimateSpread(g, DiffusionKind::kIndependentCascade, result.seeds,
                     testutil::SpreadOpts(2000, 1))
          .mean;
  EXPECT_NEAR(result.internal_spread_estimate, mc, 0.15 * mc + 1.0);
}

TEST(PmcTest, PicksTheHub) {
  Graph g = testutil::HubGraph();
  Pmc pmc(PmcOptions{100});
  Counters counters;
  const SelectionResult result = pmc.Select(IcInput(g, 2, &counters));
  EXPECT_EQ(result.seeds[0], 0u);
  EXPECT_EQ(counters.snapshots, 100u);
}

TEST(PmcTest, RejectsLt) {
  Pmc pmc(PmcOptions{});
  EXPECT_FALSE(pmc.Supports(DiffusionKind::kLinearThreshold));
}

TEST(PmcTest, AgreesWithStaticGreedyOnQuality) {
  // PMC's SCC contraction is exact: averaged reachability must match SG up
  // to snapshot sampling noise, so the selected spread should too.
  Graph g = MakeDataset("nethept", DatasetScale::kTiny);
  AssignConstantWeights(g, 0.15);
  StaticGreedy sg(StaticGreedyOptions{200});
  Pmc pmc(PmcOptions{200});
  const auto sg_seeds = sg.Select(IcInput(g, 8, nullptr)).seeds;
  const auto pmc_seeds = pmc.Select(IcInput(g, 8, nullptr)).seeds;
  const double sg_spread =
      EstimateSpread(g, DiffusionKind::kIndependentCascade, sg_seeds,
                     testutil::SpreadOpts(2000, 1))
          .mean;
  const double pmc_spread =
      EstimateSpread(g, DiffusionKind::kIndependentCascade, pmc_seeds,
                     testutil::SpreadOpts(2000, 1))
          .mean;
  EXPECT_NEAR(sg_spread, pmc_spread,
              0.12 * std::max(sg_spread, pmc_spread) + 1.0);
}

TEST(PmcTest, HandlesCyclicSnapshots) {
  // A p=1 cycle collapses to one SCC; spread from any node is the whole
  // cycle and a single seed suffices.
  Graph g = Graph::FromArcs(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}});
  AssignConstantWeights(g, 1.0);
  Pmc pmc(PmcOptions{10});
  const SelectionResult result = pmc.Select(IcInput(g, 2, nullptr));
  EXPECT_DOUBLE_EQ(result.internal_spread_estimate, 5.0);
}

TEST(PmcTest, DistinctSeeds) {
  Graph g = MakeDataset("hepph", DatasetScale::kTiny);
  AssignConstantWeights(g, 0.05);
  Pmc pmc(PmcOptions{50});
  const SelectionResult result = pmc.Select(IcInput(g, 10, nullptr));
  std::set<NodeId> unique(result.seeds.begin(), result.seeds.end());
  EXPECT_EQ(unique.size(), 10u);
}

}  // namespace
}  // namespace imbench
