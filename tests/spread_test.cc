#include "diffusion/spread.h"

#include <gtest/gtest.h>
#include "graph/weights.h"
#include "tests/test_util.h"

namespace imbench {
namespace {

TEST(SpreadTest, DeterministicChainHasZeroVariance) {
  Graph g = testutil::PathGraph(5, 1.0);
  const std::vector<NodeId> seeds = {0};
  const SpreadEstimate est =
      EstimateSpread(g, DiffusionKind::kIndependentCascade, seeds,
                     {.simulations = 200, .seed = 1});
  EXPECT_DOUBLE_EQ(est.mean, 5.0);
  EXPECT_DOUBLE_EQ(est.stddev, 0.0);
  EXPECT_DOUBLE_EQ(est.StdError(), 0.0);
  EXPECT_EQ(est.simulations, 200u);
}

TEST(SpreadTest, ReproducibleForSameSeed) {
  Graph g = testutil::HubGraph();
  const std::vector<NodeId> seeds = {0};
  const SpreadEstimate a =
      EstimateSpread(g, DiffusionKind::kIndependentCascade, seeds,
                     {.simulations = 500, .seed = 42});
  const SpreadEstimate b =
      EstimateSpread(g, DiffusionKind::kIndependentCascade, seeds,
                     {.simulations = 500, .seed = 42});
  EXPECT_DOUBLE_EQ(a.mean, b.mean);
  EXPECT_DOUBLE_EQ(a.stddev, b.stddev);
}

TEST(SpreadTest, MeanBoundedBySeedsAndNodes) {
  Graph g = testutil::HubGraph();
  const std::vector<NodeId> seeds = {0, 3};
  const SpreadEstimate est =
      EstimateSpread(g, DiffusionKind::kIndependentCascade, seeds,
                     {.simulations = 300, .seed = 7});
  EXPECT_GE(est.mean, 2.0);
  EXPECT_LE(est.mean, 7.0);
}

TEST(SpreadTest, MonotoneInSeedSet) {
  // σ is monotone (Sec. 2.2): adding a seed cannot reduce expected spread.
  Graph g = testutil::TwoStars(0.6);
  const std::vector<NodeId> small = {0};
  const std::vector<NodeId> larger = {0, 4};
  const SpreadEstimate s =
      EstimateSpread(g, DiffusionKind::kIndependentCascade, small,
                     {.simulations = 2000, .seed = 3});
  const SpreadEstimate l =
      EstimateSpread(g, DiffusionKind::kIndependentCascade, larger,
                     {.simulations = 2000, .seed = 3});
  EXPECT_GT(l.mean, s.mean);
}

TEST(SpreadTest, HubSpreadMatchesClosedForm) {
  // Hub 0 -> five children at p = 0.9 plus grandchild at 0.05 via node 5:
  // E[Γ({0})] = 1 + 5·0.9 + 0.9·0.05 = 5.545.
  Graph g = testutil::HubGraph(0.9, 0.05);
  const std::vector<NodeId> seeds = {0};
  const SpreadEstimate est =
      EstimateSpread(g, DiffusionKind::kIndependentCascade, seeds,
                     {.simulations = 20000, .seed = 5});
  EXPECT_NEAR(est.mean, 5.545, 0.05);
}

TEST(SpreadTest, ScratchOverloadAgreesWithStreamOverload) {
  Graph g = testutil::HubGraph();
  const std::vector<NodeId> seeds = {0};
  CascadeContext ctx(g.num_nodes());
  Rng rng(17);
  const SpreadEstimate a =
      EstimateSpread(g, DiffusionKind::kIndependentCascade, seeds,
                     {.simulations = 3000, .context = &ctx, .rng = &rng});
  const SpreadEstimate b =
      EstimateSpread(g, DiffusionKind::kIndependentCascade, seeds,
                     {.simulations = 3000, .seed = 17});
  EXPECT_NEAR(a.mean, b.mean, 0.2);  // same distribution, different streams
}

TEST(SpreadTest, ZeroSimulations) {
  Graph g = testutil::PathGraph(3, 1.0);
  const std::vector<NodeId> seeds = {0};
  const SpreadEstimate est =
      EstimateSpread(g, DiffusionKind::kIndependentCascade, seeds,
                     {.simulations = 0, .seed = 1});
  EXPECT_EQ(est.simulations, 0u);
  EXPECT_DOUBLE_EQ(est.mean, 0.0);
}

TEST(SpreadTest, LtUniformSpreadWithinBounds) {
  Graph g = testutil::TwoStars(1.0);
  AssignLtUniform(g);
  const std::vector<NodeId> seeds = {0};
  const SpreadEstimate est =
      EstimateSpread(g, DiffusionKind::kLinearThreshold, seeds,
                     {.simulations = 1000, .seed = 9});
  // Star children have in-degree 1, weight 1 => always activated.
  EXPECT_DOUBLE_EQ(est.mean, 4.0);
}

}  // namespace
}  // namespace imbench
