#include "diffusion/spread.h"

#include <cmath>

#include <gtest/gtest.h>
#include "common/thread_pool.h"
#include "framework/datasets.h"
#include "graph/weights.h"
#include "tests/test_util.h"

namespace imbench {
namespace {

using testutil::SpreadOpts;

TEST(SpreadTest, DeterministicChainHasZeroVariance) {
  Graph g = testutil::PathGraph(5, 1.0);
  const std::vector<NodeId> seeds = {0};
  const SpreadEstimate est = EstimateSpread(
      g, DiffusionKind::kIndependentCascade, seeds, SpreadOpts(200, 1));
  EXPECT_DOUBLE_EQ(est.mean, 5.0);
  EXPECT_DOUBLE_EQ(est.stddev, 0.0);
  EXPECT_DOUBLE_EQ(est.StdError(), 0.0);
  EXPECT_EQ(est.simulations, 200u);
}

TEST(SpreadTest, ReproducibleForSameSeed) {
  Graph g = testutil::HubGraph();
  const std::vector<NodeId> seeds = {0};
  const SpreadEstimate a = EstimateSpread(
      g, DiffusionKind::kIndependentCascade, seeds, SpreadOpts(500, 42));
  const SpreadEstimate b = EstimateSpread(
      g, DiffusionKind::kIndependentCascade, seeds, SpreadOpts(500, 42));
  EXPECT_DOUBLE_EQ(a.mean, b.mean);
  EXPECT_DOUBLE_EQ(a.stddev, b.stddev);
}

TEST(SpreadTest, MeanBoundedBySeedsAndNodes) {
  Graph g = testutil::HubGraph();
  const std::vector<NodeId> seeds = {0, 3};
  const SpreadEstimate est = EstimateSpread(
      g, DiffusionKind::kIndependentCascade, seeds, SpreadOpts(300, 7));
  EXPECT_GE(est.mean, 2.0);
  EXPECT_LE(est.mean, 7.0);
}

TEST(SpreadTest, MonotoneInSeedSet) {
  // σ is monotone (Sec. 2.2): adding a seed cannot reduce expected spread.
  Graph g = testutil::TwoStars(0.6);
  const std::vector<NodeId> small = {0};
  const std::vector<NodeId> larger = {0, 4};
  const SpreadEstimate s = EstimateSpread(
      g, DiffusionKind::kIndependentCascade, small, SpreadOpts(2000, 3));
  const SpreadEstimate l = EstimateSpread(
      g, DiffusionKind::kIndependentCascade, larger, SpreadOpts(2000, 3));
  EXPECT_GT(l.mean, s.mean);
}

TEST(SpreadTest, HubSpreadMatchesClosedForm) {
  // Hub 0 -> five children at p = 0.9 plus grandchild at 0.05 via node 5:
  // E[Γ({0})] = 1 + 5·0.9 + 0.9·0.05 = 5.545.
  Graph g = testutil::HubGraph(0.9, 0.05);
  const std::vector<NodeId> seeds = {0};
  const SpreadEstimate est = EstimateSpread(
      g, DiffusionKind::kIndependentCascade, seeds, SpreadOpts(20000, 5));
  EXPECT_NEAR(est.mean, 5.545, 0.05);
}

TEST(SpreadTest, ScratchOverloadAgreesWithStreamOverload) {
  Graph g = testutil::HubGraph();
  const std::vector<NodeId> seeds = {0};
  StreamingScratch scratch(g.num_nodes(), 17);
  SpreadOptions streaming;
  streaming.simulations = 3000;
  streaming.streaming = &scratch;
  const SpreadEstimate a =
      EstimateSpread(g, DiffusionKind::kIndependentCascade, seeds, streaming);
  const SpreadEstimate b = EstimateSpread(
      g, DiffusionKind::kIndependentCascade, seeds, SpreadOpts(3000, 17));
  EXPECT_NEAR(a.mean, b.mean, 0.2);  // same distribution, different streams
}

TEST(SpreadTest, StdErrorIsZeroBelowTwoSamples) {
  SpreadEstimate none;
  EXPECT_DOUBLE_EQ(none.StdError(), 0.0);
  SpreadEstimate one;
  one.mean = 3.0;
  one.simulations = 1;
  // A guard-tripped run can aggregate a single sample; the standard error
  // must come back 0, never NaN.
  EXPECT_DOUBLE_EQ(one.StdError(), 0.0);
  EXPECT_FALSE(std::isnan(one.StdError()));
}

TEST(SpreadTest, ZeroSimulations) {
  Graph g = testutil::PathGraph(3, 1.0);
  const std::vector<NodeId> seeds = {0};
  const SpreadEstimate est = EstimateSpread(
      g, DiffusionKind::kIndependentCascade, seeds, SpreadOpts(0, 1));
  EXPECT_EQ(est.simulations, 0u);
  EXPECT_DOUBLE_EQ(est.mean, 0.0);
}

TEST(SpreadTest, LtUniformSpreadWithinBounds) {
  Graph g = testutil::TwoStars(1.0);
  AssignLtUniform(g);
  const std::vector<NodeId> seeds = {0};
  const SpreadEstimate est = EstimateSpread(
      g, DiffusionKind::kLinearThreshold, seeds, SpreadOpts(1000, 9));
  // Star children have in-degree 1, weight 1 => always activated.
  EXPECT_DOUBLE_EQ(est.mean, 4.0);
}

// Multi-threaded estimation through the same entry point. Tests inject
// private ThreadPool instances so real worker threads run even on
// single-core machines (where the shared pool has zero workers and
// everything degrades to inline execution).

TEST(ParallelSpreadTest, MatchesSequentialExactly) {
  // Simulation i is pinned to stream i and samples aggregate in index
  // order, so the estimate must be bit-identical for any thread count.
  Graph g = MakeDataset("nethept", DatasetScale::kTiny);
  AssignWeightedCascade(g);
  const std::vector<NodeId> seeds = {1, 5, 9};
  const SpreadEstimate sequential = EstimateSpread(
      g, DiffusionKind::kIndependentCascade, seeds, SpreadOpts(500, 11));
  for (const uint32_t threads : {2u, 3u, 8u}) {
    ThreadPool pool(threads - 1);
    const SpreadEstimate parallel =
        EstimateSpread(g, DiffusionKind::kIndependentCascade, seeds,
                       SpreadOpts(500, 11, threads, &pool));
    EXPECT_DOUBLE_EQ(parallel.mean, sequential.mean) << threads;
    EXPECT_DOUBLE_EQ(parallel.stddev, sequential.stddev) << threads;
  }
}

TEST(ParallelSpreadTest, LtModelSupported) {
  Graph g = MakeDataset("nethept", DatasetScale::kTiny);
  AssignLtUniform(g);
  const std::vector<NodeId> seeds = {0, 2};
  const SpreadEstimate sequential = EstimateSpread(
      g, DiffusionKind::kLinearThreshold, seeds, SpreadOpts(300, 5));
  ThreadPool pool(1);
  const SpreadEstimate parallel =
      EstimateSpread(g, DiffusionKind::kLinearThreshold, seeds,
                     SpreadOpts(300, 5, 2, &pool));
  EXPECT_DOUBLE_EQ(parallel.mean, sequential.mean);
}

TEST(ParallelSpreadTest, ZeroSimulations) {
  Graph g = testutil::PathGraph(3, 1.0);
  const std::vector<NodeId> seeds = {0};
  const SpreadEstimate est = EstimateSpread(
      g, DiffusionKind::kIndependentCascade, seeds, SpreadOpts(0, 1, 4));
  EXPECT_EQ(est.simulations, 0u);
}

TEST(ParallelSpreadTest, MoreThreadsThanSimulations) {
  Graph g = testutil::PathGraph(4, 1.0);
  const std::vector<NodeId> seeds = {0};
  ThreadPool pool(3);
  const SpreadEstimate est =
      EstimateSpread(g, DiffusionKind::kIndependentCascade, seeds,
                     SpreadOpts(3, 1, 64, &pool));
  EXPECT_DOUBLE_EQ(est.mean, 4.0);
}

TEST(ParallelSpreadTest, DefaultThreadCount) {
  // threads = 0 resolves to all hardware threads via the shared pool.
  Graph g = testutil::HubGraph();
  const std::vector<NodeId> seeds = {0};
  const SpreadEstimate est = EstimateSpread(
      g, DiffusionKind::kIndependentCascade, seeds, SpreadOpts(200, 3, 0));
  EXPECT_GT(est.mean, 1.0);
}

}  // namespace
}  // namespace imbench
