#include "graph/stats.h"

#include <gtest/gtest.h>

namespace imbench {
namespace {

TEST(StatsTest, PathGraphBasics) {
  // 0 - 1 - 2 - 3 - 4 (directed chain).
  Graph g = Graph::FromArcs(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  Rng rng(1);
  const GraphStats stats = ComputeStats(g, rng, 5);
  EXPECT_EQ(stats.num_nodes, 5u);
  EXPECT_EQ(stats.num_arcs, 4u);
  EXPECT_DOUBLE_EQ(stats.avg_out_degree, 0.8);
  EXPECT_EQ(stats.max_out_degree, 1u);
  EXPECT_EQ(stats.max_in_degree, 1u);
  EXPECT_EQ(stats.largest_wcc_size, 5u);
  // 90th percentile of chain distances lies between 2 and 4 hops.
  EXPECT_GE(stats.effective_diameter_90, 2.0);
  EXPECT_LE(stats.effective_diameter_90, 4.0);
}

TEST(StatsTest, StarGraph) {
  Graph g = Graph::FromArcs(5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}});
  Rng rng(2);
  const GraphStats stats = ComputeStats(g, rng, 5);
  EXPECT_EQ(stats.max_out_degree, 4u);
  // Weak diameter of a star is 2; the 90th percentile is at most that.
  EXPECT_LE(stats.effective_diameter_90, 2.0);
  EXPECT_EQ(stats.largest_wcc_size, 5u);
}

TEST(StatsTest, DisconnectedComponents) {
  Graph g = Graph::FromArcs(6, {{0, 1}, {1, 2}, {3, 4}});
  EXPECT_EQ(LargestWeaklyConnectedComponent(g), 3u);
  Rng rng(3);
  const GraphStats stats = ComputeStats(g, rng, 6);
  EXPECT_EQ(stats.largest_wcc_size, 3u);
}

TEST(StatsTest, WccIgnoresEdgeDirection) {
  // 0 -> 1 <- 2: weakly connected despite no directed path 0 -> 2.
  Graph g = Graph::FromArcs(3, {{0, 1}, {2, 1}});
  EXPECT_EQ(LargestWeaklyConnectedComponent(g), 3u);
}

TEST(StatsTest, EmptyGraph) {
  Graph g = Graph::FromArcs(0, {});
  Rng rng(4);
  const GraphStats stats = ComputeStats(g, rng);
  EXPECT_EQ(stats.num_nodes, 0u);
  EXPECT_DOUBLE_EQ(stats.avg_out_degree, 0.0);
}

TEST(StatsTest, SingletonNodes) {
  Graph g = Graph::FromArcs(4, {});
  Rng rng(5);
  const GraphStats stats = ComputeStats(g, rng, 4);
  EXPECT_EQ(stats.largest_wcc_size, 1u);
  EXPECT_DOUBLE_EQ(stats.effective_diameter_90, 0.0);
}

}  // namespace
}  // namespace imbench
