#include "common/table.h"

#include <gtest/gtest.h>

namespace imbench {
namespace {

TEST(TextTableTest, AlignsColumns) {
  TextTable table({"name", "value"});
  table.AddRow({"a", "1"});
  table.AddRow({"longer-name", "22"});
  const std::string out = table.ToString();
  // Header, separator, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  // The value column starts at the same offset in every line.
  std::vector<std::string> lines;
  size_t start = 0;
  for (size_t nl = out.find('\n'); nl != std::string::npos;
       nl = out.find('\n', start)) {
    lines.push_back(out.substr(start, nl - start));
    start = nl + 1;
  }
  ASSERT_EQ(lines.size(), 4u);
  const size_t header_col = lines[0].find("value");
  EXPECT_EQ(lines[2].find('1'), header_col);
  EXPECT_EQ(lines[3].find("22"), header_col);
}

TEST(TextTableTest, ShortRowsPadded) {
  TextTable table({"a", "b", "c"});
  table.AddRow({"x"});
  EXPECT_NO_THROW(table.ToString());
}

TEST(TextTableTest, CsvEscapesSpecials) {
  TextTable table({"name", "note"});
  table.AddRow({"a,b", "say \"hi\""});
  const std::string csv = table.ToCsv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(TextTableTest, NumFormatting) {
  EXPECT_EQ(TextTable::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::Num(3.14159, 4), "3.1416");
  EXPECT_EQ(TextTable::Int(-42), "-42");
}

TEST(TextTableTest, SecsAdaptivePrecision) {
  EXPECT_EQ(TextTable::Secs(0.00123), "0.0012");
  EXPECT_EQ(TextTable::Secs(1.23456), "1.235");
  EXPECT_EQ(TextTable::Secs(123.456), "123.5");
}

TEST(TextTableTest, MegaBytes) {
  EXPECT_EQ(TextTable::MegaBytes(1'500'000), "1.50");
  EXPECT_EQ(TextTable::MegaBytes(0), "0.00");
}

}  // namespace
}  // namespace imbench
