// Shared fixtures: tiny hand-built graphs with known influence structure.
#ifndef IMBENCH_TESTS_TEST_UTIL_H_
#define IMBENCH_TESTS_TEST_UTIL_H_

#include <vector>

#include "diffusion/spread.h"
#include "graph/graph.h"
#include "graph/weights.h"

namespace imbench {
namespace testutil {

// Builds SpreadOptions with the shared run controls filled in. The seed /
// threads / pool knobs live in the CommonRunOptions base, which designated
// initializers cannot name, so tests use this instead of brace-init.
inline SpreadOptions SpreadOpts(uint32_t simulations, uint64_t seed,
                                uint32_t threads = 1,
                                ThreadPool* pool = nullptr) {
  SpreadOptions options;
  options.simulations = simulations;
  options.seed = seed;
  options.threads = threads;
  options.pool = pool;
  return options;
}

// A 7-node "hub" graph: node 0 points at 1..5 (strongly), node 6 isolated
// except for a weak edge 5 -> 6. Node 0 is unambiguously the best seed.
inline Graph HubGraph(double hub_weight = 0.9, double weak_weight = 0.05) {
  std::vector<Arc> arcs;
  for (NodeId v = 1; v <= 5; ++v) arcs.push_back(Arc{0, v});
  arcs.push_back(Arc{5, 6});
  Graph g = Graph::FromArcs(7, arcs);
  std::vector<double> w(g.num_edges(), hub_weight);
  w.back() = weak_weight;  // edges sorted by source; (5,6) is last
  g.SetWeights(w);
  return g;
}

// Directed path 0 -> 1 -> 2 -> ... -> n-1 with uniform weight.
inline Graph PathGraph(NodeId n, double weight) {
  std::vector<Arc> arcs;
  for (NodeId v = 0; v + 1 < n; ++v) arcs.push_back(Arc{v, v + 1});
  Graph g = Graph::FromArcs(n, arcs);
  std::vector<double> w(g.num_edges(), weight);
  g.SetWeights(w);
  return g;
}

// Two disjoint stars: 0 -> {1,2,3}, 4 -> {5,6}. Greedy should pick 0 then 4.
inline Graph TwoStars(double weight = 1.0) {
  std::vector<Arc> arcs = {{0, 1}, {0, 2}, {0, 3}, {4, 5}, {4, 6}};
  Graph g = Graph::FromArcs(7, arcs);
  std::vector<double> w(g.num_edges(), weight);
  g.SetWeights(w);
  return g;
}

}  // namespace testutil
}  // namespace imbench

#endif  // IMBENCH_TESTS_TEST_UTIL_H_
