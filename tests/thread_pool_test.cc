// The work-stealing pool underneath the parallel sampling engine.
#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

namespace imbench {
namespace {

TEST(ThreadPoolTest, WorkerCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.worker_count(), 3u);
}

TEST(ThreadPoolTest, SubmitRunsEveryTask) {
  ThreadPool pool(4);
  constexpr int kTasks = 200;
  std::atomic<int> done{0};
  std::mutex mutex;
  std::condition_variable cv;
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&] {
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == kTasks) {
        std::lock_guard<std::mutex> lock(mutex);
        cv.notify_one();
      }
    });
  }
  std::unique_lock<std::mutex> lock(mutex);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(30), [&] {
    return done.load(std::memory_order_acquire) == kTasks;
  }));
}

TEST(ThreadPoolTest, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.worker_count(), 0u);
  int ran = 0;
  pool.Submit([&] { ++ran; });  // inline: visible immediately
  EXPECT_EQ(ran, 1);
  std::vector<int> hits(10, 0);
  pool.ParallelFor(10, 4, [&](uint64_t i, uint32_t lane) {
    EXPECT_EQ(lane, 0u);  // no workers: everything on the caller
    ++hits[i];
  });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, ParallelForCoversEachItemOnce) {
  ThreadPool pool(3);
  constexpr uint64_t kItems = 10000;
  std::vector<std::atomic<int>> hits(kItems);
  pool.ParallelFor(kItems, 4, [&](uint64_t i, uint32_t lane) {
    EXPECT_LT(lane, 4u);
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (uint64_t i = 0; i < kItems; ++i) {
    EXPECT_EQ(hits[i].load(std::memory_order_relaxed), 1) << i;
  }
}

TEST(ThreadPoolTest, ParallelForZeroItems) {
  ThreadPool pool(2);
  bool ran = false;
  pool.ParallelFor(0, 4, [&](uint64_t, uint32_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, ParallelismClampedToItemCount) {
  ThreadPool pool(4);
  std::atomic<uint32_t> max_lane{0};
  pool.ParallelFor(2, 16, [&](uint64_t, uint32_t lane) {
    uint32_t seen = max_lane.load(std::memory_order_relaxed);
    while (lane > seen &&
           !max_lane.compare_exchange_weak(seen, lane,
                                           std::memory_order_relaxed)) {
    }
  });
  EXPECT_LT(max_lane.load(std::memory_order_relaxed), 2u);
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  // A lane body that calls ParallelFor on the same pool must not deadlock
  // waiting for its own queue; the nested call degrades to an inline loop.
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  pool.ParallelFor(4, 3, [&](uint64_t, uint32_t) {
    pool.ParallelFor(5, 3, [&](uint64_t, uint32_t) {
      inner_total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(inner_total.load(std::memory_order_relaxed), 20);
}

TEST(ThreadPoolTest, UnevenItemCostsBalance) {
  // Dynamic cursor: one slow item must not serialize the rest. This is a
  // smoke test for liveness, not a timing assertion.
  ThreadPool pool(3);
  std::atomic<int> done{0};
  pool.ParallelFor(64, 4, [&](uint64_t i, uint32_t) {
    if (i == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    done.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(done.load(std::memory_order_relaxed), 64);
}

TEST(ThreadPoolTest, SharedPoolSingleton) {
  ThreadPool& a = ThreadPool::Shared();
  ThreadPool& b = ThreadPool::Shared();
  EXPECT_EQ(&a, &b);
  // hardware_concurrency - 1 workers; on a single-core machine that is 0
  // and the pool degrades to inline execution.
  EXPECT_EQ(a.worker_count(),
            std::max(1u, std::thread::hardware_concurrency()) - 1);
}

TEST(ThreadPoolTest, EffectiveThreadsResolvesZeroToHardware) {
  EXPECT_EQ(EffectiveThreads(0),
            std::max(1u, std::thread::hardware_concurrency()));
  EXPECT_EQ(EffectiveThreads(1), 1u);
  EXPECT_EQ(EffectiveThreads(7), 7u);
}

}  // namespace
}  // namespace imbench
