// Trace-layer tests: span nesting and ordering, the JSON golden format,
// the zero-overhead null-trace guard, and — the load-bearing property —
// byte-identical phase breakdowns for every thread count.
#include "framework/trace.h"

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "algorithms/algorithm.h"
#include "diffusion/spread.h"
#include "framework/memory.h"
#include "framework/registry.h"
#include "graph/weights.h"

namespace imbench {
namespace {

TEST(TraceTest, SpansRecordNestingOrderParentAndDepth) {
  Trace trace;
  {
    Span sample(&trace, "sample");
    trace.Add(TraceCounter::kRrSets, 3);
  }
  {
    Span select(&trace, "select");
    {
      Span refine(&trace, "refine");
      trace.Add(TraceCounter::kNodeLookups, 2);
    }
    trace.Add(TraceCounter::kGuardPolls);
  }
  ASSERT_TRUE(trace.AllClosed());
  const auto& spans = trace.spans();
  ASSERT_EQ(spans.size(), 3u);

  EXPECT_EQ(spans[0].name, "sample");
  EXPECT_EQ(spans[0].parent, -1);
  EXPECT_EQ(spans[0].depth, 0);
  EXPECT_TRUE(spans[0].closed);

  EXPECT_EQ(spans[1].name, "select");
  EXPECT_EQ(spans[1].parent, -1);
  EXPECT_EQ(spans[1].depth, 0);

  EXPECT_EQ(spans[2].name, "refine");
  EXPECT_EQ(spans[2].parent, 1);  // nested under "select"
  EXPECT_EQ(spans[2].depth, 1);

  // Per-span counters are inclusive of children; totals sum everything.
  const int rr = static_cast<int>(TraceCounter::kRrSets);
  const int lookups = static_cast<int>(TraceCounter::kNodeLookups);
  const int polls = static_cast<int>(TraceCounter::kGuardPolls);
  EXPECT_EQ(spans[0].counters[rr], 3u);
  EXPECT_EQ(spans[0].counters[lookups], 0u);
  EXPECT_EQ(spans[1].counters[lookups], 2u);  // inherited from "refine"
  EXPECT_EQ(spans[1].counters[polls], 1u);
  EXPECT_EQ(spans[2].counters[lookups], 2u);
  EXPECT_EQ(trace.Total(TraceCounter::kRrSets), 3u);
  EXPECT_EQ(trace.Total(TraceCounter::kNodeLookups), 2u);
  EXPECT_EQ(trace.Total(TraceCounter::kGuardPolls), 1u);
}

TEST(TraceTest, EarlyCloseEndsTheSpanOnce) {
  Trace trace;
  Span span(&trace, "sample");
  span.Close();
  EXPECT_TRUE(trace.AllClosed());
  // The destructor must now be a no-op (would CHECK otherwise).
}

TEST(TraceTest, JsonGoldenDeterministicDocument) {
  Trace trace;
  {
    Span sample(&trace, "sample");
    trace.Add(TraceCounter::kRrSets, 3);
    trace.Add(TraceCounter::kRrEdgesExamined, 17);
  }
  {
    Span select(&trace, "select");
    {
      Span refine(&trace, "refine");
      trace.Add(TraceCounter::kNodeLookups, 2);
    }
    trace.Add(TraceCounter::kGuardPolls);
  }
  const std::string expected = R"json({
  "version": 1,
  "counters": {
    "rr_sets": 3,
    "rr_edges_examined": 17,
    "simulations": 0,
    "node_lookups": 2,
    "queue_reevaluations": 0,
    "snapshots": 0,
    "scoring_rounds": 0,
    "guard_polls": 1,
    "rr_sets_repaired": 0,
    "rr_sets_reused": 0,
    "corpus_epochs": 0,
    "fused_blocks": 0,
    "bnb_nodes_expanded": 0,
    "bnb_pruned": 0,
    "graph_bytes_mapped": 0,
    "neighbor_blocks_decoded": 0
  },
  "phases": [
    {"name": "sample", "parent": -1, "depth": 0, "counters": {"rr_sets": 3, "rr_edges_examined": 17}},
    {"name": "select", "parent": -1, "depth": 0, "counters": {"node_lookups": 2, "guard_polls": 1}},
    {"name": "refine", "parent": 1, "depth": 1, "counters": {"node_lookups": 2}}
  ]
}
)json";
  EXPECT_EQ(trace.ToJson(/*include_timings=*/false), expected);

  // The full document adds a "timings" object; the deterministic prefix is
  // unchanged.
  const std::string timed = trace.ToJson(/*include_timings=*/true);
  EXPECT_NE(timed.find("\"timings\""), std::string::npos);
  EXPECT_NE(timed.find("\"elapsed_seconds\""), std::string::npos);
}

TEST(TraceTest, AnnotationsEmittedOnlyWhenPresent) {
  Trace trace;
  { Span span(&trace, "sample"); }
  // Without annotations the document keeps its historical shape exactly.
  EXPECT_EQ(trace.ToJson(/*include_timings=*/false).find("annotations"),
            std::string::npos);
  trace.Annotate("mc_engine", "fused");
  trace.Annotate("mc_engine", "scalar");  // overwrite, not duplicate
  trace.Annotate("dataset", "nethept");
  const std::string json = trace.ToJson(/*include_timings=*/false);
  EXPECT_NE(json.find("\"annotations\": {\n    \"mc_engine\": \"scalar\",\n"
                      "    \"dataset\": \"nethept\"\n  }"),
            std::string::npos);
}

TEST(TraceTest, WriteJsonFileRoundTrips) {
  Trace trace;
  { Span span(&trace, "sample"); }
  const std::string path = ::testing::TempDir() + "/trace_test_out.json";
  ASSERT_TRUE(trace.WriteJsonFile(path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string content(1 << 16, '\0');
  content.resize(std::fread(content.data(), 1, content.size(), f));
  std::fclose(f);
  EXPECT_FALSE(content.empty());
  EXPECT_EQ(content.front(), '{');
  EXPECT_NE(content.find("\"phases\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceTest, NullTraceIsZeroOverhead) {
  // The instrumented hot paths pass nullptr when tracing is off; the guard
  // and helper must not allocate a single byte.
  const uint64_t heap_before = CurrentHeapBytes();
  for (int i = 0; i < 1000; ++i) {
    Span span(nullptr, "sample");
    TraceAdd(nullptr, TraceCounter::kSimulations, 42);
    span.Close();
  }
  EXPECT_EQ(CurrentHeapBytes(), heap_before);
}

TEST(TraceDeathTest, OutOfOrderCloseChecksLoudly) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Trace trace;
  const int32_t outer = trace.OpenSpan("outer");
  trace.OpenSpan("inner");
  EXPECT_DEATH(trace.CloseSpan(outer), "LIFO");
}

TEST(TraceDeathTest, ToJsonWithOpenSpansChecksLoudly) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Trace trace;
  trace.OpenSpan("still-open");
  EXPECT_DEATH((void)trace.ToJson(), "open spans");
}

// --- Determinism: the phase breakdown may not depend on the thread count.

Graph DeterminismGraph() {
  const NodeId n = 300;
  std::vector<Arc> arcs;
  for (NodeId i = 0; i < n; ++i) {
    arcs.push_back(Arc{i, (i + 1) % n});
    arcs.push_back(Arc{i, (i * 7 + 3) % n});
    arcs.push_back(Arc{i, (i * 13 + 5) % n});
  }
  Graph graph = Graph::FromArcs(n, std::move(arcs));
  Rng rng(0x7ace);
  AssignWeights(graph, WeightModel::kWc, 0.1, rng);
  return graph;
}

// One driver-shaped run: selection (the algorithm's own spans) plus the
// decoupled MC evaluation, everything recorded in a fresh trace.
std::string RunTraced(const Graph& graph, const char* algorithm,
                      uint32_t threads) {
  Trace trace;
  std::unique_ptr<ImAlgorithm> instance = MakeAlgorithm(algorithm);
  SelectionInput input;
  input.graph = &graph;
  input.diffusion = DiffusionKind::kIndependentCascade;
  input.k = 5;
  input.seed = 11;
  input.threads = threads;
  input.trace = &trace;
  const SelectionResult selection = instance->Select(input);

  SpreadOptions eval;
  eval.simulations = 500;
  eval.seed = 23;
  eval.threads = threads;
  eval.trace = &trace;
  Span evaluate_span(&trace, "evaluate");
  (void)EstimateSpread(graph, input.diffusion, selection.seeds, eval);
  evaluate_span.Close();
  return trace.ToJson(/*include_timings=*/false);
}

TEST(TraceDeterminismTest, ImmPhaseBreakdownIdenticalAcrossThreadCounts) {
  const Graph graph = DeterminismGraph();
  const std::string sequential = RunTraced(graph, "IMM", 1);
  EXPECT_EQ(RunTraced(graph, "IMM", 2), sequential);
  EXPECT_EQ(RunTraced(graph, "IMM", 8), sequential);
  // The breakdown actually contains work, not just zeros.
  EXPECT_NE(sequential.find("\"sample\""), std::string::npos);
  EXPECT_NE(sequential.find("\"select\""), std::string::npos);
  EXPECT_NE(sequential.find("\"evaluate\""), std::string::npos);
}

TEST(TraceDeterminismTest, TimPlusPhaseBreakdownIdenticalAcrossThreadCounts) {
  const Graph graph = DeterminismGraph();
  const std::string sequential = RunTraced(graph, "TIM+", 1);
  EXPECT_EQ(RunTraced(graph, "TIM+", 2), sequential);
  EXPECT_EQ(RunTraced(graph, "TIM+", 8), sequential);
  EXPECT_NE(sequential.find("\"kpt\""), std::string::npos);
}

TEST(TraceDeterminismTest, CountersSumConsistentlyWithReportedTotals) {
  // Trace totals must line up with the legacy Counters the drivers print.
  const Graph graph = DeterminismGraph();
  Trace trace;
  Counters counters;
  std::unique_ptr<ImAlgorithm> instance = MakeAlgorithm("IMM");
  SelectionInput input;
  input.graph = &graph;
  input.diffusion = DiffusionKind::kIndependentCascade;
  input.k = 5;
  input.seed = 11;
  input.counters = &counters;
  input.trace = &trace;
  (void)instance->Select(input);
  EXPECT_EQ(trace.Total(TraceCounter::kRrSets), counters.rr_sets);
  EXPECT_GT(trace.Total(TraceCounter::kRrSets), 0u);
  EXPECT_GT(trace.Total(TraceCounter::kRrEdgesExamined), 0u);
  // Root spans partition the totals: their counter sums must equal the
  // trace-wide totals (children are inclusive, so only roots are summed).
  TraceCounterArray root_sum{};
  for (const TraceSpan& span : trace.spans()) {
    if (span.parent != -1) continue;
    for (int c = 0; c < kNumTraceCounters; ++c) {
      root_sum[c] += span.counters[c];
    }
  }
  for (int c = 0; c < kNumTraceCounters; ++c) {
    EXPECT_EQ(root_sum[c], trace.Total(static_cast<TraceCounter>(c)))
        << TraceCounterName(static_cast<TraceCounter>(c));
  }
}

}  // namespace
}  // namespace imbench
