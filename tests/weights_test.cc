#include "graph/weights.h"

#include <set>

#include <gtest/gtest.h>
#include "graph/generators.h"

namespace imbench {
namespace {

Graph SmallGraph() {
  return Graph::FromArcs(4, {{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 0}});
}

TEST(WeightsTest, ConstantAssignsEverywhere) {
  Graph g = SmallGraph();
  AssignConstantWeights(g, 0.1);
  for (const double w : g.weights()) EXPECT_DOUBLE_EQ(w, 0.1);
}

TEST(WeightsTest, WeightedCascadeIsInverseInDegree) {
  Graph g = SmallGraph();
  AssignWeightedCascade(g);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const double w : g.InWeights(v)) {
      EXPECT_DOUBLE_EQ(w, 1.0 / g.InDegree(v));
    }
  }
}

TEST(WeightsTest, TrivalencyDrawsFromThreeLevels) {
  Rng gen(1);
  EdgeList list = ErdosRenyi(50, 400, gen);
  Graph g = Graph::FromArcs(list.num_nodes, list.arcs);
  Rng rng(2);
  AssignTrivalency(g, rng);
  std::set<double> seen;
  for (const double w : g.weights()) {
    EXPECT_TRUE(w == 0.001 || w == 0.01 || w == 0.1);
    seen.insert(w);
  }
  EXPECT_EQ(seen.size(), 3u);  // all three levels appear at this size
}

TEST(WeightsTest, LtUniformSatisfiesConstraint) {
  Graph g = SmallGraph();
  AssignLtUniform(g);
  EXPECT_TRUE(SatisfiesLtConstraint(g));
  // Uniform: in-weights of every node sum to exactly 1 (when indeg > 0).
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.InDegree(v) > 0) {
      EXPECT_NEAR(g.InWeightSum(v), 1.0, 1e-12);
    }
  }
}

TEST(WeightsTest, LtRandomNormalizesToOne) {
  Rng gen(3);
  EdgeList list = ErdosRenyi(40, 200, gen);
  Graph g = Graph::FromArcs(list.num_nodes, list.arcs);
  Rng rng(4);
  AssignLtRandom(g, rng);
  EXPECT_TRUE(SatisfiesLtConstraint(g));
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.InDegree(v) > 0) {
      EXPECT_NEAR(g.InWeightSum(v), 1.0, 1e-9);
    }
  }
  // Unlike uniform, weights within a node differ.
  bool any_uneven = false;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto w = g.InWeights(v);
    for (size_t i = 1; i < w.size(); ++i) any_uneven |= (w[i] != w[0]);
  }
  EXPECT_TRUE(any_uneven);
}

TEST(WeightsTest, LtParallelEdgesUsesMultiplicities) {
  // 3 parallel arcs 0->2 and 1 arc 1->2: W(0,2)=3/4, W(1,2)=1/4.
  Graph g = Graph::FromArcs(3, {{0, 2}, {0, 2}, {0, 2}, {1, 2}});
  AssignLtParallelEdges(g);
  const auto sources = g.InSources(2);
  const auto weights = g.InWeights(2);
  for (size_t i = 0; i < sources.size(); ++i) {
    EXPECT_DOUBLE_EQ(weights[i], sources[i] == 0 ? 0.75 : 0.25);
  }
  EXPECT_TRUE(SatisfiesLtConstraint(g));
}

TEST(WeightsTest, LtParallelOnSimpleGraphEqualsUniform) {
  Graph g = SmallGraph();
  AssignLtParallelEdges(g);
  Graph h = SmallGraph();
  AssignLtUniform(h);
  for (size_t i = 0; i < g.weights().size(); ++i) {
    EXPECT_DOUBLE_EQ(g.weights()[i], h.weights()[i]);
  }
}

TEST(WeightsTest, ConstraintViolationDetected) {
  Graph g = SmallGraph();
  AssignConstantWeights(g, 0.9);  // node 2 has in-degree 2 -> sum 1.8
  EXPECT_FALSE(SatisfiesLtConstraint(g));
}

class AssignWeightsDispatchTest
    : public ::testing::TestWithParam<WeightModel> {};

TEST_P(AssignWeightsDispatchTest, DispatchAssignsAllEdges) {
  Rng gen(5);
  EdgeList list = ErdosRenyi(30, 150, gen);
  Graph g = Graph::FromArcs(list.num_nodes, list.arcs);
  Rng rng(6);
  AssignWeights(g, GetParam(), 0.1, rng);
  double sum = 0;
  for (const double w : g.weights()) {
    EXPECT_GE(w, 0.0);
    EXPECT_LE(w, 1.0);
    sum += w;
  }
  EXPECT_GT(sum, 0.0);
  EXPECT_FALSE(WeightModelName(GetParam()).empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, AssignWeightsDispatchTest,
    ::testing::Values(WeightModel::kIcConstant, WeightModel::kWc,
                      WeightModel::kTrivalency, WeightModel::kLtUniform,
                      WeightModel::kLtRandom, WeightModel::kLtParallel),
    [](const ::testing::TestParamInfo<WeightModel>& info) {
      std::string name = WeightModelName(info.param);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace imbench
