// dataset_gen: materializes the synthetic dataset catalog (or any custom
// generator) as SNAP-format edge-list files for use outside the library.
//
//   ./dataset_gen --dataset=nethept --scale=bench --out=nethept.txt
//   ./dataset_gen --generator=ba --nodes=10000 --arcs-per-node=5 --out=ba.txt

#include <cstdio>

#include "common/flags.h"
#include "framework/datasets.h"
#include "graph/generators.h"
#include "graph/stats.h"

using namespace imbench;

int main(int argc, char** argv) {
  FlagSet flags("generate synthetic social networks as edge lists");
  std::string* dataset = flags.AddString(
      "dataset", "", "catalog profile to generate (empty: use --generator)");
  std::string* scale = flags.AddString("scale", "bench", "dataset scale");
  std::string* generator = flags.AddString(
      "generator", "rmat", "er|ba|ws|chunglu|rmat (with --nodes/--arcs)");
  int64_t* nodes = flags.AddInt("nodes", 10000, "custom generator: nodes");
  int64_t* arcs = flags.AddInt("arcs", 50000, "custom generator: arcs");
  int64_t* arcs_per_node =
      flags.AddInt("arcs-per-node", 5, "ba: attachments per node");
  double* beta = flags.AddDouble("beta", 0.1, "ws: rewiring probability");
  double* exponent = flags.AddDouble("exponent", 2.5, "chunglu: power-law");
  int64_t* seed = flags.AddInt("seed", 7, "RNG seed");
  std::string* out = flags.AddString("out", "graph.txt", "output path");
  bool* stats = flags.AddBool("stats", true, "print summary statistics");
  flags.Parse(argc, argv);

  EdgeList list;
  if (!dataset->empty()) {
    const DatasetProfile* profile = FindDataset(*dataset);
    if (profile == nullptr) {
      std::fprintf(stderr, "unknown dataset '%s'\n", dataset->c_str());
      return 1;
    }
    const DatasetScale ds = ParseDatasetScale(*scale);
    Rng rng = Rng::ForStream(static_cast<uint64_t>(*seed),
                             std::hash<std::string>{}(profile->name));
    list = Rmat(profile->NodesAt(ds), profile->EdgesAt(ds), RmatParams{},
                rng);
  } else {
    Rng rng(static_cast<uint64_t>(*seed));
    const NodeId n = static_cast<NodeId>(*nodes);
    const uint64_t m = static_cast<uint64_t>(*arcs);
    if (*generator == "er") {
      list = ErdosRenyi(n, m, rng);
    } else if (*generator == "ba") {
      list = BarabasiAlbert(n, static_cast<uint32_t>(*arcs_per_node), rng);
    } else if (*generator == "ws") {
      list = WattsStrogatz(n, static_cast<uint32_t>(*arcs_per_node) * 2,
                           *beta, rng);
    } else if (*generator == "chunglu") {
      list = ChungLu(n, m, *exponent, rng);
    } else if (*generator == "rmat") {
      list = Rmat(n, m, RmatParams{}, rng);
    } else {
      std::fprintf(stderr, "unknown generator '%s'\n", generator->c_str());
      return 1;
    }
  }

  if (!SaveEdgeList(*out, list)) {
    std::fprintf(stderr, "failed to write '%s'\n", out->c_str());
    return 1;
  }
  std::printf("wrote %zu arcs over %u nodes to %s\n", list.arcs.size(),
              list.num_nodes, out->c_str());

  if (*stats) {
    Graph graph = Graph::FromArcs(list.num_nodes, list.arcs);
    Rng srng(static_cast<uint64_t>(*seed) + 1);
    const GraphStats s = ComputeStats(graph, srng, 16);
    std::printf(
        "stats: avg out-degree %.2f, max out-degree %u, 90%%ile diameter "
        "%.1f, largest WCC %u\n",
        s.avg_out_degree, s.max_out_degree, s.effective_diameter_90,
        s.largest_wcc_size);
  }
  return 0;
}
