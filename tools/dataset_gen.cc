// dataset_gen: materializes the synthetic dataset catalog (or any custom
// generator) as SNAP-format edge-list files — or directly as `.imgrf`
// graph files (weights baked in) for the out-of-core CompactGraph backend.
//
//   ./dataset_gen --dataset=nethept --scale=bench --out=nethept.txt
//   ./dataset_gen --generator=ba --nodes=10000 --arcs-per-node=5 --out=ba.txt
//   ./dataset_gen --generator=ba --nodes=6250000 --arcs-per-node=16
//       --model=WC --stream --out=ba100m.imgrf
//
// `.imgrf` output goes through GraphFileStreamWriter, which needs O(nodes)
// RAM regardless of the arc count. With --stream the BA generator also keeps
// its endpoint history (the degree-proportional sampling pool, 8 bytes per
// arc) in an unlinked mmap-backed temp file instead of the heap, so
// paper-scale graphs (100M+ arcs) generate without ever holding the arcs in
// memory. The streamed BA consumes the RNG identically to the in-memory
// BarabasiAlbert, so --stream changes the memory profile, not the graph.

#include <cstdio>
#include <cstring>
#include <unordered_set>
#include <vector>

#include "common/check.h"
#include "common/flags.h"
#include "framework/datasets.h"
#include "graph/generators.h"
#include "graph/graph_file.h"
#include "graph/stats.h"
#include "graph/weights.h"

#ifndef _WIN32
#include <sys/mman.h>
#include <unistd.h>
#endif

using namespace imbench;

namespace {

bool HasSuffix(const std::string& s, const char* suffix) {
  const size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

// Append-only uint32 array in an unlinked temp file, mapped to its maximum
// size up front (pages materialize on first touch). Falls back to the heap
// when the platform has no mmap so the tool still works everywhere.
class FileBackedU32Array {
 public:
  explicit FileBackedU32Array(uint64_t max_entries) {
#ifndef _WIN32
    std::FILE* f = std::tmpfile();
    if (f != nullptr &&
        ftruncate(fileno(f), static_cast<off_t>(max_entries * 4)) == 0) {
      void* p = mmap(nullptr, max_entries * 4, PROT_READ | PROT_WRITE,
                     MAP_SHARED, fileno(f), 0);
      if (p != MAP_FAILED) {
        data_ = static_cast<uint32_t*>(p);
        mapped_entries_ = max_entries;
      }
    }
    // The mapping pins the inode; the FILE handle can go either way. Close
    // it so the descriptor is not leaked (the mapping survives the close).
    if (f != nullptr) std::fclose(f);
#endif
    if (data_ == nullptr) heap_.reserve(max_entries);
  }

  ~FileBackedU32Array() {
#ifndef _WIN32
    if (data_ != nullptr) munmap(data_, mapped_entries_ * 4);
#endif
  }

  void push_back(uint32_t v) {
    if (data_ != nullptr) {
      IMBENCH_CHECK(size_ < mapped_entries_);
      data_[size_++] = v;
    } else {
      heap_.push_back(v);
      ++size_;
    }
  }

  uint32_t operator[](uint64_t i) const {
    return data_ != nullptr ? data_[i] : heap_[i];
  }
  uint64_t size() const { return size_; }
  bool file_backed() const { return data_ != nullptr; }

 private:
  uint32_t* data_ = nullptr;
  uint64_t mapped_entries_ = 0;
  uint64_t size_ = 0;
  std::vector<uint32_t> heap_;
};

// Barabasi–Albert streamed arc-by-arc into `sink`. Mirrors the in-memory
// BarabasiAlbert() exactly — same RNG consumption, same arc order, same
// rejection loop — with the endpoint pool spilled to a temp file.
template <typename Sink>
void StreamBarabasiAlbert(NodeId num_nodes, uint32_t edges_per_node, Rng& rng,
                          Sink&& sink) {
  IMBENCH_CHECK(edges_per_node >= 1);
  IMBENCH_CHECK(num_nodes > edges_per_node);
  const uint64_t k = edges_per_node;
  const uint64_t max_arcs =
      k * (k + 1) / 2 + (static_cast<uint64_t>(num_nodes) - k - 1) * k;
  FileBackedU32Array endpoints(max_arcs * 2);
  for (NodeId u = 0; u <= edges_per_node; ++u) {
    for (NodeId v = 0; v < u; ++v) {
      sink(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  for (NodeId u = edges_per_node + 1; u < num_nodes; ++u) {
    uint32_t added = 0;
    std::unordered_set<NodeId> picked;
    for (uint32_t attempt = 0;
         added < edges_per_node && attempt < 64 * edges_per_node; ++attempt) {
      const NodeId v = endpoints[rng.NextU64(endpoints.size())];
      if (v == u || !picked.insert(v).second) continue;
      sink(u, v);
      ++added;
    }
    for (const NodeId v : picked) {
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags("generate synthetic social networks as edge lists");
  std::string* dataset = flags.AddString(
      "dataset", "", "catalog profile to generate (empty: use --generator)");
  std::string* scale = flags.AddString("scale", "bench", "dataset scale");
  std::string* generator = flags.AddString(
      "generator", "rmat", "er|ba|ws|chunglu|rmat (with --nodes/--arcs)");
  int64_t* nodes = flags.AddInt("nodes", 10000, "custom generator: nodes");
  int64_t* arcs = flags.AddInt("arcs", 50000, "custom generator: arcs");
  int64_t* arcs_per_node =
      flags.AddInt("arcs-per-node", 5, "ba: attachments per node");
  double* beta = flags.AddDouble("beta", 0.1, "ws: rewiring probability");
  double* exponent = flags.AddDouble("exponent", 2.5, "chunglu: power-law");
  int64_t* seed = flags.AddInt("seed", 7, "RNG seed");
  std::string* out = flags.AddString("out", "graph.txt", "output path");
  std::string* format = flags.AddString(
      "format", "auto",
      "edgelist|imgrf|auto (auto: .imgrf suffix selects the graph file)");
  std::string* model_name = flags.AddString(
      "model", "WC",
      "imgrf: weight model baked into the file (IC|WC|TV|LT|LT-P; "
      "LT-random is not streamable)");
  double* ic_p = flags.AddDouble("p", 0.1, "imgrf: IC constant probability");
  bool* stream = flags.AddBool(
      "stream", false,
      "imgrf + --generator=ba only: stream arcs straight into the writer "
      "(O(nodes) RAM, endpoint pool in a temp file)");
  bool* stats = flags.AddBool("stats", true, "print summary statistics");
  flags.Parse(argc, argv);

  bool write_imgrf;
  if (*format == "imgrf") {
    write_imgrf = true;
  } else if (*format == "edgelist") {
    write_imgrf = false;
  } else if (*format == "auto") {
    write_imgrf = HasSuffix(*out, ".imgrf");
  } else {
    std::fprintf(stderr, "unknown --format '%s' (edgelist|imgrf|auto)\n",
                 format->c_str());
    return 2;
  }

  GraphFileStreamWriter::Options writer_options;
  if (write_imgrf) {
    if (!ParseWeightModel(*model_name, &writer_options.model)) {
      std::fprintf(stderr, "unknown model '%s' (IC|WC|TV|LT|LT-random|LT-P)\n",
                   model_name->c_str());
      return 2;
    }
    writer_options.ic_p = *ic_p;
    // Same keying im_run uses for AssignWeights, so an .imgrf written with
    // --seed=S carries byte-identical weights to an in-memory run of the
    // same graph under --seed=S.
    writer_options.weight_rng_seed = static_cast<uint64_t>(*seed) ^ 0x8e1;
  }

  if (*stream) {
    if (!write_imgrf || !dataset->empty() || *generator != "ba") {
      std::fprintf(stderr,
                   "--stream requires --generator=ba and .imgrf output "
                   "(er/ws/chunglu/rmat need global dedup state and are "
                   "generated in memory)\n");
      return 2;
    }
    Rng rng(static_cast<uint64_t>(*seed));
    const NodeId n = static_cast<NodeId>(*nodes);
    GraphFileStreamWriter writer(*out, n, writer_options);
    StreamBarabasiAlbert(n, static_cast<uint32_t>(*arcs_per_node), rng,
                         [&](NodeId u, NodeId v) { writer.AddArc(u, v); });
    std::string error;
    if (!writer.Finish(&error)) {
      std::fprintf(stderr, "failed to write '%s': %s\n", out->c_str(),
                   error.c_str());
      return 1;
    }
    std::printf("streamed %llu arcs over %u nodes to %s (%s weights)\n",
                static_cast<unsigned long long>(writer.arcs_added()), n,
                out->c_str(), WeightModelName(writer_options.model).c_str());
    return 0;
  }

  EdgeList list;
  if (!dataset->empty()) {
    const DatasetProfile* profile = FindDataset(*dataset);
    if (profile == nullptr) {
      std::fprintf(stderr, "unknown dataset '%s'\n", dataset->c_str());
      return 1;
    }
    const DatasetScale ds = ParseDatasetScale(*scale);
    Rng rng = Rng::ForStream(static_cast<uint64_t>(*seed),
                             std::hash<std::string>{}(profile->name));
    list = Rmat(profile->NodesAt(ds), profile->EdgesAt(ds), RmatParams{},
                rng);
  } else {
    Rng rng(static_cast<uint64_t>(*seed));
    const NodeId n = static_cast<NodeId>(*nodes);
    const uint64_t m = static_cast<uint64_t>(*arcs);
    if (*generator == "er") {
      list = ErdosRenyi(n, m, rng);
    } else if (*generator == "ba") {
      list = BarabasiAlbert(n, static_cast<uint32_t>(*arcs_per_node), rng);
    } else if (*generator == "ws") {
      list = WattsStrogatz(n, static_cast<uint32_t>(*arcs_per_node) * 2,
                           *beta, rng);
    } else if (*generator == "chunglu") {
      list = ChungLu(n, m, *exponent, rng);
    } else if (*generator == "rmat") {
      list = Rmat(n, m, RmatParams{}, rng);
    } else {
      std::fprintf(stderr, "unknown generator '%s'\n", generator->c_str());
      return 1;
    }
  }

  if (write_imgrf) {
    GraphFileStreamWriter writer(*out, list.num_nodes, writer_options);
    for (const Arc& arc : list.arcs) writer.AddArc(arc.source, arc.target);
    std::string error;
    if (!writer.Finish(&error)) {
      std::fprintf(stderr, "failed to write '%s': %s\n", out->c_str(),
                   error.c_str());
      return 1;
    }
    std::printf("wrote %zu arcs over %u nodes to %s (%s weights)\n",
                list.arcs.size(), list.num_nodes, out->c_str(),
                WeightModelName(writer_options.model).c_str());
  } else {
    if (!SaveEdgeList(*out, list)) {
      std::fprintf(stderr, "failed to write '%s'\n", out->c_str());
      return 1;
    }
    std::printf("wrote %zu arcs over %u nodes to %s\n", list.arcs.size(),
                list.num_nodes, out->c_str());
  }

  if (*stats) {
    Graph graph = Graph::FromArcs(list.num_nodes, list.arcs);
    Rng srng(static_cast<uint64_t>(*seed) + 1);
    const GraphStats s = ComputeStats(graph, srng, 16);
    std::printf(
        "stats: avg out-degree %.2f, max out-degree %u, 90%%ile diameter "
        "%.1f, largest WCC %u\n",
        s.avg_out_degree, s.max_out_degree, s.effective_diameter_90,
        s.largest_wcc_size);
  }
  return 0;
}
