// im_run: the benchmarking platform's command-line driver. Runs any
// registered technique on a catalog profile or a SNAP edge-list file under
// any weight model, and reports seeds, MC-evaluated spread, time, memory
// and counters.
//
//   ./im_run --algorithm=IMM --dataset=youtube --model=WC --k=50
//   ./im_run --algorithm=LDAG --graph=soc-Epinions1.txt --model=LT --k=100
//   ./im_run --algorithm=IMM --graph-file=ba100m.imgrf --model=WC --k=50
//
// --graph-file runs the RR-set techniques out-of-core: the `.imgrf` is
// mmap'd (CompactGraph) instead of loaded into a heap CSR, weights come
// baked from the file, and --mem-budget then caps only the sampling
// working set. With --keep-going a refused file (torn, truncated, foreign)
// degrades to the ordinary --graph/--dataset load instead of aborting.
//
// With --serve the binary becomes the always-on query engine instead: it
// opens the graph in an EpochGraphStore, stands up an ImService and
// replays a --workload file of queries and mutations against the warm RR
// corpus (see src/service/workload.h for the format), printing one JSON
// line per op:
//
//   ./im_run --serve --workload=ops.txt --dataset=nethept --model=WC

#include <cstdio>
#include <memory>

#include "common/flags.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "diffusion/spread.h"
#include "framework/datasets.h"
#include "framework/exact_opt.h"
#include "framework/fault.h"
#include "framework/memory.h"
#include "framework/registry.h"
#include "framework/run_guard.h"
#include "framework/trace.h"
#include "graph/compact_graph.h"
#include "graph/edge_list.h"
#include "graph/graph_view.h"
#include "graph/weights.h"
#include "service/epoch_graph_store.h"
#include "service/im_service.h"
#include "service/workload.h"

using namespace imbench;

namespace {

WeightModel ParseModel(const std::string& name) {
  WeightModel model;
  if (ParseWeightModel(name, &model)) return model;
  std::fprintf(stderr, "unknown model '%s' (IC|WC|TV|LT|LT-random|LT-P)\n",
               name.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags("run one IM technique and report the paper's metrics");
  std::string* algorithm = flags.AddString("algorithm", "IMM",
                                           "registry name (see --list)");
  std::string* dataset =
      flags.AddString("dataset", "nethept", "catalog profile name");
  std::string* graph_path = flags.AddString(
      "graph", "", "SNAP edge-list file (overrides --dataset)");
  std::string* graph_file = flags.AddString(
      "graph-file", "",
      ".imgrf graph file to mmap as the out-of-core backend (overrides "
      "--graph/--dataset; weights are baked into the file)");
  bool* bidirectional = flags.AddBool(
      "bidirectional", false, "treat --graph arcs as undirected edges");
  std::string* scale = flags.AddString("scale", "bench", "dataset scale");
  std::string* model_name = flags.AddString("model", "WC", "weight model");
  double* ic_p = flags.AddDouble("p", 0.1, "IC constant probability");
  int64_t* k = flags.AddInt("k", 50, "seed-set size");
  double* parameter = flags.AddDouble(
      "param", kDefaultParameter,
      "external parameter (default: the Table 2 optimum for the model)");
  int64_t* mc = flags.AddInt("mc", 10000, "MC simulations for evaluation");
  std::string* mc_engine_name = flags.AddString(
      "mc-engine", "auto",
      "MC kernel for spread evaluation: auto|scalar|fused (auto picks the "
      "bit-parallel fused kernel when the simulation count allows it)");
  double* budget = flags.AddDouble(
      "budget", 0.0,
      "selection time budget in seconds (0 = unlimited); on expiry the "
      "partial seed set is reported");
  double* mem_budget = flags.AddDouble(
      "mem-budget", 0.0, "selection heap cap in MB (0 = unlimited)");
  bool* exact_opt = flags.AddBool(
      "exact-opt", false,
      "also compute the branch-and-bound exact optimum (closure-table "
      "oracle, feasible up to 64 nodes / bounded live-edge instantiations) "
      "and report the true optimality ratio of the returned seeds");
  int64_t* bnb_node_budget = flags.AddInt(
      "bnb-node-budget", 5'000'000,
      "--exact-opt: search-node budget; on expiry the incumbent is "
      "reported as a lower bound instead of a proven optimum");
  int64_t* seed = flags.AddInt("seed", 1, "RNG seed");
  int64_t* threads = flags.AddInt(
      "threads", 0,
      "worker threads for RR-set generation and MC evaluation "
      "(0 = all hardware, 1 = sequential); results do not depend on it");
  std::string* trace_out = flags.AddString(
      "trace-out", "",
      "write the per-phase trace (spans + counters) as JSON to this file");
  bool* trace_table = flags.AddBool(
      "trace", false, "print the per-phase trace as a human-readable table");
  bool* serve = flags.AddBool(
      "serve", false,
      "run as an always-on query service replaying --workload against a "
      "warm RR corpus instead of one-shot selection");
  std::string* workload_path = flags.AddString(
      "workload", "", "query+mutation workload file for --serve");
  double* eps = flags.AddDouble(
      "eps", 0.5, "service default sampling accuracy for --serve queries");
  bool* keep_going = flags.AddBool(
      "keep-going", false,
      "degrade instead of aborting: a refused --graph-file falls back to "
      "edge-list loading; --serve reports malformed workload lines and "
      "failed mutations as {\"op\":\"error\"} records and keeps replaying");
  std::string* checkpoint_path = flags.AddString(
      "checkpoint", "",
      "--serve: recover the warm RR corpus from this file on start (if it "
      "matches the graph/seed/model) and save it back on exit");
  std::string* fault_plan_spec = flags.AddString(
      "fault-plan", "",
      "arm deterministic fault injection, e.g. "
      "'rr_arena_grow:hit=1,checkpoint_write:hit=1' "
      "(see framework/fault.h for the grammar)");
  int64_t* fault_seed = flags.AddInt(
      "fault-seed", 0, "RNG seed for probabilistic fault rules");
  bool* list = flags.AddBool("list", false, "list algorithms and exit");
  flags.Parse(argc, argv);

  if (!fault_plan_spec->empty()) {
    FaultPlan plan;
    std::string fault_error;
    if (!ParseFaultPlan(*fault_plan_spec, &plan, &fault_error)) {
      std::fprintf(stderr, "bad --fault-plan: %s\n", fault_error.c_str());
      return 2;
    }
    plan.seed = static_cast<uint64_t>(*fault_seed);
    FaultInjector::Global().Arm(plan);
  }

  if (*list) {
    std::printf("%-16s %-4s %-4s %s\n", "name", "IC", "LT", "parameter");
    for (const AlgorithmSpec& spec : AlgorithmRegistry()) {
      std::printf("%-16s %-4s %-4s %s\n", spec.name.c_str(),
                  spec.supports_ic ? "yes" : "-",
                  spec.supports_lt ? "yes" : "-",
                  spec.HasParameter() ? spec.parameter_name.c_str() : "");
    }
    return 0;
  }

  const WeightModel model = ParseModel(*model_name);
  const DiffusionKind kind = DiffusionKindFor(model);
  McEngine mc_engine = McEngine::kAuto;
  if (!ParseMcEngine(*mc_engine_name, &mc_engine)) {
    std::fprintf(stderr, "unknown --mc-engine '%s' (auto|scalar|fused)\n",
                 mc_engine_name->c_str());
    return 2;
  }

  Trace trace;
  Trace* const tr =
      (*trace_table || !trace_out->empty()) ? &trace : nullptr;
  if (tr != nullptr) tr->Annotate("mc_engine", McEngineName(mc_engine));

  // Build the graph: the mmap'd compact backend when --graph-file opens
  // cleanly, the heap CSR otherwise.
  Graph graph;
  CompactGraph compact;
  bool use_compact = false;
  {
    Span setup_span(tr, "setup");
    if (!graph_file->empty()) {
      CompactGraph::OpenOptions open_options;
      open_options.trace = tr;
      std::string error;
      const GraphFileStatus status =
          CompactGraph::Open(*graph_file, &compact, &error, open_options);
      if (status == GraphFileStatus::kOk) {
        if (compact.weight_model() != model) {
          std::fprintf(stderr,
                       "%s carries %s weights baked in; rerun with "
                       "--model=%s\n",
                       graph_file->c_str(),
                       WeightModelName(compact.weight_model()).c_str(),
                       WeightModelName(compact.weight_model()).c_str());
          return 1;
        }
        use_compact = true;
      } else if (*keep_going) {
        std::fprintf(stderr,
                     "warning: cannot open %s (%s: %s); degrading to "
                     "edge-list loading\n",
                     graph_file->c_str(), GraphFileStatusName(status),
                     error.c_str());
      } else {
        std::fprintf(stderr,
                     "cannot open %s (%s): %s\n"
                     "(--keep-going degrades to --graph/--dataset loading)\n",
                     graph_file->c_str(), GraphFileStatusName(status),
                     error.c_str());
        return 1;
      }
    }
    if (use_compact) {
      // Weights are baked into the file; nothing else to set up.
    } else if (!graph_path->empty()) {
      EdgeListError error;
      const auto loaded = LoadEdgeList(*graph_path, nullptr, &error);
      if (!loaded.has_value()) {
        std::fprintf(stderr, "failed to load edge list: %s\n",
                     error.Format(*graph_path).c_str());
        return 1;
      }
      GraphOptions options;
      options.make_bidirectional = *bidirectional;
      graph = Graph::FromArcs(loaded->num_nodes, loaded->arcs, options);
    } else {
      graph = MakeDataset(*dataset, ParseDatasetScale(*scale),
                          static_cast<uint64_t>(*seed));
    }
    Rng wrng(static_cast<uint64_t>(*seed) ^ 0x8e1);
    AssignWeights(graph, model, *ic_p, wrng);
  }

  if (*serve) {
    if (use_compact) {
      std::fprintf(stderr,
                   "--serve mutates the graph (EpochGraphStore) and needs "
                   "the in-memory backend; drop --graph-file\n");
      return 2;
    }
    if (workload_path->empty()) {
      std::fprintf(stderr, "--serve requires --workload=FILE\n");
      return 2;
    }
    // The workload read is a fault site; a transient IO failure (volume
    // not mounted yet) is retried a few times before giving up.
    std::string workload_text;
    std::string error;
    bool read_ok = false;
    for (int attempt = 0; attempt < 3 && !read_ok; ++attempt) {
      read_ok = ReadWorkloadFile(*workload_path, &workload_text, &error);
    }
    if (!read_ok) {
      std::fprintf(stderr, "cannot read workload %s: %s\n",
                   workload_path->c_str(), error.c_str());
      return 1;
    }
    std::vector<WorkloadOp> ops;
    if (*keep_going) {
      ParseWorkloadLenient(workload_text, &ops);
    } else if (!ParseWorkload(workload_text, &ops, &error)) {
      std::fprintf(stderr, "bad workload %s: %s\n", workload_path->c_str(),
                   error.c_str());
      return 1;
    }
    EpochGraphStore store(std::move(graph));
    ServiceOptions service_options;
    service_options.kind = kind;
    service_options.epsilon = *eps;
    service_options.seed = static_cast<uint64_t>(*seed);
    service_options.threads = static_cast<uint32_t>(*threads);
    service_options.trace = tr;
    // An explicit pool sized to --threads: the shared pool is sized to the
    // hardware, which silently falls back to the sequential engine on a
    // single-core box even when more threads were asked for. Results are
    // thread-count invariant either way; this keeps the flag honest.
    std::unique_ptr<ThreadPool> serve_pool;
    if (service_options.threads > 1) {
      serve_pool = std::make_unique<ThreadPool>(service_options.threads - 1);
      service_options.pool = serve_pool.get();
    }
    ImService service(store, service_options);

    // SIGINT/SIGTERM drain the in-flight op, the summary line below still
    // prints, and the process exits 0 — an orchestrated stop is not an
    // error.
    InstallServeSignalHandlers();

    if (!checkpoint_path->empty()) {
      std::string detail;
      const CheckpointStatus status =
          service.LoadCheckpoint(*checkpoint_path, &detail);
      std::printf(
          "{\"op\":\"checkpoint\",\"action\":\"recover\",\"status\":\"%s\","
          "\"warm_sets\":%zu,\"detail\":\"%s\"}\n",
          CheckpointStatusName(status), service.corpus().size(),
          detail.c_str());
    }

    Timer timer;
    std::string log;
    ReplayOptions replay_options;
    replay_options.stop = SigintCancelFlag();
    replay_options.keep_going = *keep_going;
    replay_options.retry_backoff_seconds = 0.001;
    const ReplayResult replay =
        ReplayWorkload(store, service, ops, &log, replay_options);
    std::fputs(log.c_str(), stdout);

    if (!checkpoint_path->empty()) {
      std::string detail;
      const bool saved = service.SaveCheckpoint(*checkpoint_path, &detail);
      std::printf(
          "{\"op\":\"checkpoint\",\"action\":\"save\",\"status\":\"%s\","
          "\"warm_sets\":%zu,\"detail\":\"%s\"}\n",
          saved ? "ok" : "failed", service.corpus().size(), detail.c_str());
    }

    std::printf(
        "{\"op\":\"summary\",\"queries\":%zu,\"mutations\":%llu,"
        "\"retries\":%llu,\"degraded\":%llu,\"errors\":%llu,"
        "\"final_epoch\":%llu,\"corpus_epochs\":%llu,\"warm_sets\":%zu,"
        "\"mc_engine\":\"%s\",\"interrupted\":%s,\"elapsed_seconds\":%.3f}\n",
        replay.queries.size(),
        static_cast<unsigned long long>(replay.mutations),
        static_cast<unsigned long long>(replay.retries),
        static_cast<unsigned long long>(replay.degraded),
        static_cast<unsigned long long>(replay.errors),
        static_cast<unsigned long long>(replay.final_epoch),
        static_cast<unsigned long long>(service.corpus_epoch()),
        service.corpus().size(), McEngineName(mc_engine),
        replay.interrupted ? "true" : "false", timer.Seconds());
    std::printf(
        "served %zu queries, %llu mutations, final epoch %llu, warm corpus "
        "%zu sets (%.2f MB), %.3fs\n",
        replay.queries.size(),
        static_cast<unsigned long long>(replay.mutations),
        static_cast<unsigned long long>(replay.final_epoch),
        service.corpus().size(), service.corpus().MemoryBytes() / 1e6,
        timer.Seconds());
    if (*trace_table) trace.PrintTable(stdout);
    if (!trace_out->empty() && !trace.WriteJsonFile(*trace_out)) {
      std::fprintf(stderr, "failed to write trace to %s\n",
                   trace_out->c_str());
      return 1;
    }
    return 0;
  }

  const AlgorithmSpec* spec = FindAlgorithm(*algorithm);
  if (spec == nullptr) {
    std::fprintf(stderr, "unknown algorithm '%s' (try --list)\n",
                 algorithm->c_str());
    return 1;
  }
  if (!spec->Supports(kind)) {
    std::fprintf(stderr, "%s does not support %s (Table 5)\n",
                 spec->name.c_str(), DiffusionKindName(kind));
    return 1;
  }
  if (use_compact && !spec->supports_compact) {
    std::fprintf(stderr,
                 "%s traverses the heap CSR directly and cannot run on "
                 "--graph-file; techniques supporting it:",
                 spec->name.c_str());
    for (const AlgorithmSpec& s : AlgorithmRegistry()) {
      if (s.supports_compact) std::fprintf(stderr, " %s", s.name.c_str());
    }
    std::fprintf(stderr, "\n");
    return 1;
  }
  double param = *parameter;
  if (std::isnan(param)) param = spec->OptimalParameterFor(model);
  std::unique_ptr<ImAlgorithm> instance = spec->make(param);

  Counters counters;
  SelectionInput input;
  if (use_compact) {
    input.compact = &compact;
  } else {
    input.graph = &graph;
  }
  input.diffusion = kind;
  input.k = static_cast<uint32_t>(*k);
  input.seed = static_cast<uint64_t>(*seed);
  input.counters = &counters;
  input.threads = static_cast<uint32_t>(*threads);
  input.trace = tr;

  // Budgets: first Ctrl-C drains the run and reports partial seeds.
  InstallSigintCancel();
  RunBudget run_budget;
  if (*budget > 0) run_budget.deadline_seconds = *budget;
  run_budget.max_heap_bytes =
      static_cast<uint64_t>(*mem_budget * 1024.0 * 1024.0);
  run_budget.cancel = SigintCancelFlag();

  const uint64_t heap_before = CurrentHeapBytes();
  ResetPeakHeapBytes();
  Timer timer;
  RunGuard guard(run_budget);
  input.guard = &guard;
  const SelectionResult result = instance->Select(input);
  const double select_secs = timer.Seconds();
  const uint64_t peak = PeakHeapBytes() - heap_before;

  const GraphView view = input.View();
  timer.Restart();
  SpreadOptions eval;
  eval.simulations = static_cast<uint32_t>(*mc);
  eval.engine = mc_engine;
  eval.seed = static_cast<uint64_t>(*seed);
  eval.threads = static_cast<uint32_t>(*threads);
  eval.trace = tr;
  Span evaluate_span(tr, "evaluate");
  const SpreadEstimate sigma = EstimateSpread(view, kind, result.seeds, eval);
  evaluate_span.Close();
  const double eval_secs = timer.Seconds();

  std::printf("graph: %u nodes, %llu arcs%s; model %s; algorithm %s",
              view.num_nodes(),
              static_cast<unsigned long long>(view.num_edges()),
              use_compact ? " (mmap'd graph file)" : "",
              WeightModelName(model).c_str(), spec->name.c_str());
  if (spec->HasParameter()) {
    std::printf(" (%s = %g)", spec->parameter_name.c_str(), param);
  }
  std::printf("\nseeds:");
  for (const NodeId s : result.seeds) std::printf(" %u", s);
  std::printf(
      "\nspread: %.1f +/- %.2f (%.2f%% of network, %u sims, %s engine, "
      "%.2fs)\n",
      sigma.mean, sigma.StdError(), 100.0 * sigma.mean / view.num_nodes(),
      sigma.simulations, McEngineName(mc_engine), eval_secs);
  if (result.internal_spread_estimate > 0) {
    std::printf("algorithm's internal estimate: %.1f\n",
                result.internal_spread_estimate);
  }
  std::printf("selection: %.3fs, peak working memory %.2f MB", select_secs,
              peak / 1e6);
  if (!result.complete()) {
    std::printf(" (stopped early: %s; %zu of %u seeds)",
                StopReasonName(result.stop_reason), result.seeds.size(),
                input.k);
  }
  std::printf("\n");
  if (use_compact) {
    // File-backed pages are reclaimable page cache, not heap — report them
    // separately so the heap figure above stays comparable to in-memory
    // runs (see EXPERIMENTS.md, memory accounting).
    std::printf("graph file: %.2f MB resident of %.2f MB mapped\n",
                compact.ResidentBytes() / 1e6, compact.MappedBytes() / 1e6);
  }
  if (*exact_opt && use_compact) {
    std::printf(
        "exact-opt: needs the in-memory backend (closure tables index the "
        "heap CSR); rerun without --graph-file\n");
  } else if (*exact_opt) {
    ExactOptOptions exact;
    exact.node_budget = static_cast<uint64_t>(*bnb_node_budget);
    exact.threads = static_cast<uint32_t>(*threads);
    exact.trace = tr;
    if (!ExactOracleFeasible(graph, kind, exact)) {
      std::printf(
          "exact-opt: infeasible for this graph (need <= 64 nodes and a "
          "bounded live-edge closure table)\n");
    } else {
      const ExactOptResult optimum =
          BranchAndBoundOptimum(graph, kind, input.k, exact);
      if (optimum.status == ExactOptStatus::kStopped) {
        std::printf("exact-opt: stopped (%s) before finding an incumbent\n",
                    StopReasonName(optimum.stop));
      } else {
        const ExactSpreadOracle oracle(graph, kind, exact);
        const double achieved = oracle.Spread(result.seeds);
        std::printf(
            "exact-opt: %s %.4f (achieved %.4f, ratio %.4f; %llu "
            "nodes expanded, %llu pruned, %llu closure classes)\n",
            optimum.proven() ? "optimum OPT =" : "incumbent lower bound >=",
            optimum.spread, achieved,
            optimum.spread > 0 ? achieved / optimum.spread : 0.0,
            static_cast<unsigned long long>(optimum.nodes_expanded),
            static_cast<unsigned long long>(optimum.nodes_pruned),
            static_cast<unsigned long long>(optimum.closure_classes));
      }
    }
  }
  std::printf(
      "counters: %llu spread evaluations, %llu simulations, %llu RR sets, "
      "%llu snapshots, %llu scoring rounds\n",
      static_cast<unsigned long long>(counters.spread_evaluations),
      static_cast<unsigned long long>(counters.simulations),
      static_cast<unsigned long long>(counters.rr_sets),
      static_cast<unsigned long long>(counters.snapshots),
      static_cast<unsigned long long>(counters.scoring_rounds));
  if (*trace_table) trace.PrintTable(stdout);
  if (!trace_out->empty()) {
    if (!trace.WriteJsonFile(*trace_out)) {
      std::fprintf(stderr, "failed to write trace to %s\n",
                   trace_out->c_str());
      return 1;
    }
  }
  return 0;
}
