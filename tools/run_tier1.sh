#!/usr/bin/env bash
# Tier-1 gate: build and test the tree three times — optimized (release),
# AddressSanitizer + UBSan (asan), and ThreadSanitizer (tsan, which runs
# only the concurrency-sensitive suites via the preset's test filter) —
# using the CMake presets at the repo root. Run from anywhere:
#
#   tools/run_tier1.sh            # all three presets
#   tools/run_tier1.sh release    # just the optimized build
#   tools/run_tier1.sh asan tsan  # just the sanitizer builds
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$repo_root"

presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
  presets=(release asan tsan)
fi

jobs="$(nproc 2>/dev/null || echo 2)"

for preset in "${presets[@]}"; do
  echo "==> [$preset] configure"
  cmake --preset "$preset"
  echo "==> [$preset] build"
  cmake --build --preset "$preset" -j "$jobs"
  echo "==> [$preset] ctest"
  ctest --preset "$preset" -j "$jobs"
done

echo "tier-1 OK: ${presets[*]}"
